// Adaptive-bitrate (ABR) streaming over mmWave 5G — the paper's headline
// use case (§2.2-2.3): a passenger streams ultra-HD video during a drive
// around the Loop, where throughput swings from ~2 Gbps at stoplights to
// LTE-level rates in dead zones. Two rate controllers are compared on the
// same drive:
//
//   * HarmonicMean  — the classic in-situ estimator (FESTIVE/MPC style):
//                     next bitrate from the harmonic mean of recent
//                     observed throughput.
//   * Lumos5G       — context-aware: a GDBT L+M+C model trained on prior
//                     campaigns predicts next-second throughput from the
//                     UE's location, motion and connection context.
//
// Reported per policy: average bitrate, rebuffer time, quality switches,
// and a simple QoE score (paper §2.2: prediction error <= 20% brings QoE
// near optimal).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/lumos5g.h"
#include "ml/harmonic.h"
#include "sim/areas.h"

namespace {

using namespace lumos;

// 2-second segments across an ultra-HD ladder (Mbps).
constexpr double kLadder[] = {0.8, 2.5, 8.0, 16.0, 35.0, 80.0, 140.0, 250.0};
constexpr double kSegmentSeconds = 2.0;
constexpr double kSafety = 0.8;  // use 80% of the predicted rate

struct StreamStats {
  double played_s = 0.0;
  double rebuffer_s = 0.0;
  double bitrate_sum = 0.0;  // bitrate-seconds
  int switches = 0;

  double avg_bitrate() const {
    return played_s > 0.0 ? bitrate_sum / played_s : 0.0;
  }
  /// QoE: average bitrate (Mbps) minus rebuffer and switch penalties.
  double qoe() const {
    return avg_bitrate() - 8.0 * rebuffer_s / std::max(1.0, played_s) * 10.0 -
           0.3 * switches;
  }
};

std::size_t ladder_pick(double predicted_mbps) {
  std::size_t pick = 0;
  for (std::size_t i = 0; i < std::size(kLadder); ++i) {
    if (kLadder[i] <= kSafety * predicted_mbps) pick = i;
  }
  return pick;
}

/// Streams over one recorded walk. `predict` maps the sample index of the
/// current second to a throughput estimate (Mbps).
template <typename Predictor>
StreamStats stream(const std::vector<const data::SampleRecord*>& walk,
                   Predictor&& predict) {
  StreamStats st;
  double buffer_s = 4.0;      // startup buffer
  std::size_t quality = 0;
  std::size_t last_quality = 0;
  double seg_remaining_mbit = kLadder[quality] * kSegmentSeconds;

  for (std::size_t t = 0; t < walk.size(); ++t) {
    // Download for one second at the actual link rate.
    double budget_mbit = walk[t]->throughput_mbps;
    while (budget_mbit > 0.0) {
      if (seg_remaining_mbit <= budget_mbit) {
        budget_mbit -= seg_remaining_mbit;
        buffer_s += kSegmentSeconds;
        // Next segment: consult the controller.
        quality = ladder_pick(predict(t));
        if (quality != last_quality) ++st.switches;
        last_quality = quality;
        seg_remaining_mbit = kLadder[quality] * kSegmentSeconds;
        if (buffer_s > 30.0) break;  // buffer full: stop fetching
      } else {
        seg_remaining_mbit -= budget_mbit;
        budget_mbit = 0.0;
      }
    }
    // Play one second.
    if (buffer_s >= 1.0) {
      buffer_s -= 1.0;
      st.played_s += 1.0;
      st.bitrate_sum += kLadder[last_quality];
    } else {
      st.rebuffer_s += 1.0;
    }
  }
  return st;
}

}  // namespace

int main() {
  // Train Lumos5G on prior campaigns (seeds differ from the replayed
  // drive). The Loop has no tower survey, so the app uses L+M+C.
  std::printf("training Lumos5G on prior Loop campaigns...\n");
  const data::Dataset train_ds =
      sim::collect_area_dataset(sim::make_loop(), 2, 4, 2024);
  core::Lumos5GConfig cfg;
  cfg.feature_spec = data::FeatureSetSpec::parse("L+M+C");
  cfg.gbdt.n_estimators = 200;
  core::Lumos5G lumos(cfg);
  if (const auto r = lumos.train(train_ds); !r) {
    std::printf("training failed: %s\n", r.error().describe().c_str());
    return 1;
  }

  // A fresh drive the model has never seen.
  const data::Dataset live =
      sim::collect_area_dataset(sim::make_loop(), 0, 1, 555);
  const auto runs = live.runs();
  const auto& run = runs.front();
  std::vector<const data::SampleRecord*> walk;
  for (std::size_t i : run) walk.push_back(&live[i]);
  std::printf("replaying a %zu-second drive (trajectory %d)\n\n",
              walk.size(), walk.front()->trajectory_id);

  // Policy 1: harmonic mean of the last 5 observed seconds.
  const ml::HarmonicMeanPredictor hm(5);
  std::vector<double> seen;
  const auto hm_policy = [&](std::size_t t) {
    seen.clear();
    for (std::size_t k = t >= 5 ? t - 5 : 0; k < t; ++k) {
      seen.push_back(walk[k]->throughput_mbps);
    }
    return seen.empty() ? walk[0]->throughput_mbps : hm.predict_next(seen);
  };
  const StreamStats hm_stats = stream(walk, hm_policy);

  // Policy 2: Lumos5G context-aware prediction.
  const auto lumos_policy = [&](std::size_t t) {
    const std::size_t lo = t >= 5 ? t - 5 : 0;
    std::vector<data::SampleRecord> window;
    for (std::size_t k = lo; k <= t && k < walk.size(); ++k) {
      window.push_back(*walk[k]);
    }
    const auto pred = lumos.predict(window);
    return pred ? pred->throughput_mbps : walk[t]->throughput_mbps;
  };
  const StreamStats lu_stats = stream(walk, lumos_policy);

  // Oracle: perfect 1-second lookahead (upper bound).
  const auto oracle_policy = [&](std::size_t t) {
    return walk[std::min(t + 1, walk.size() - 1)]->throughput_mbps;
  };
  const StreamStats oracle = stream(walk, oracle_policy);

  std::printf("%-14s %12s %12s %9s %8s\n", "policy", "avg bitrate",
              "rebuffer", "switches", "QoE");
  std::printf("---------------------------------------------------------------\n");
  const auto row = [](const char* name, const StreamStats& s) {
    std::printf("%-14s %9.1f Mbps %9.1f s %9d %8.1f\n", name, s.avg_bitrate(),
                s.rebuffer_s, s.switches, s.qoe());
  };
  row("HarmonicMean", hm_stats);
  row("Lumos5G", lu_stats);
  row("Oracle(+1s)", oracle);

  std::printf(
      "\nContext-aware prediction lets the player ride 5G's big swings "
      "instead of trailing them (paper §2.2: <=20%% prediction error keeps "
      "QoE near optimal).\n");
  return 0;
}

// Throughput-map explorer: builds the paper's envisioned "5G throughput
// map" (Fig. 3c / Fig. 6) for one of the three study areas, renders it as
// a text heatmap, and answers point queries — the operator-facing side of
// Lumos5G.
//
// Usage: ./examples/throughput_map [airport|intersection|loop]
#include <cstdio>
#include <cstring>
#include <string>

#include "core/throughput_map.h"
#include "sim/areas.h"

int main(int argc, char** argv) {
  using namespace lumos;

  const std::string which = argc > 1 ? argv[1] : "airport";
  sim::Area area = [&] {
    if (which == "intersection") return sim::make_intersection();
    if (which == "loop") return sim::make_loop();
    return sim::make_airport();
  }();

  std::printf("collecting campaign for '%s'...\n", area.env.name().c_str());
  const int drive_runs = area.driving.empty() ? 0 : 2;
  const data::Dataset ds =
      sim::collect_area_dataset(area, /*walk_runs=*/6, drive_runs, 99);
  std::printf("  %zu samples\n\n", ds.size());

  const auto map = core::ThroughputMap::build(ds, 2);
  std::printf("%s\n", map.render_ascii(70).c_str());
  std::printf("legend: '#'>=1000  '+'>=700  'o'>=300  '.'>=60  '_'<60 Mbps\n\n");

  std::printf("map statistics:\n");
  std::printf("  measured ~2m cells:   %zu\n", map.cells().size());
  std::printf("  5G coverage:          %.1f%% of seconds\n",
              100.0 * map.coverage_5g());
  std::printf("  cells above 700 Mbps: %.1f%%\n",
              100.0 * map.fraction_above(700.0));
  std::printf("  cells above 300 Mbps: %.1f%%\n",
              100.0 * map.fraction_above(300.0));

  // Point queries: what would an app at a measured spot expect?
  std::printf("\nsample cell queries:\n");
  int shown = 0;
  for (const auto& s : ds.samples()) {
    if (shown >= 5) break;
    if (static_cast<std::size_t>(shown) * 700 + 100 >
        static_cast<std::size_t>(&s - ds.samples().data())) {
      continue;  // spread queries along the dataset
    }
    if (const auto* cell = map.lookup(s.pixel_x, s.pixel_y)) {
      std::printf("  pixel (%lld, %lld): mean %.0f Mbps, CV %.2f, "
                  "%zu samples, 5G %.0f%%\n",
                  static_cast<long long>(s.pixel_x),
                  static_cast<long long>(s.pixel_y), cell->mean_mbps,
                  cell->cv, cell->count, 100.0 * cell->coverage_5g);
      ++shown;
    }
  }
  return 0;
}

// Quickstart: the smallest end-to-end use of the Lumos5G library.
//
//   1. Simulate a measurement campaign in the Airport area (stand-in for
//      loading a real per-second dataset).
//   2. Train the Lumos5G GDBT predictor on the L+M feature group.
//   3. Query it online with a window of recent samples, like a 5G-aware
//      app would before picking a video bitrate.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "core/lumos5g.h"
#include "sim/areas.h"

int main() {
  using namespace lumos;

  // 1. Data: 8 walking passes over each airport trajectory, cleaned with
  // the paper's §3.1 quality rules (GPS filter, warm-up trim, pixelize).
  std::printf("collecting simulated airport campaign...\n");
  const data::Dataset ds =
      sim::collect_area_dataset(sim::make_airport(), /*walk_runs=*/8,
                                /*drive_runs=*/0, /*seed=*/1);
  std::printf("  %zu per-second samples\n", ds.size());

  // 2. Train.
  core::Lumos5GConfig cfg;
  cfg.feature_spec = data::FeatureSetSpec::parse("L+M");
  cfg.gbdt.n_estimators = 150;
  core::Lumos5G predictor(cfg);
  if (const auto r = predictor.train(ds); !r) {
    std::printf("training failed: %s\n", r.error().describe().c_str());
    return 1;
  }
  std::printf("trained GDBT on features:");
  for (const auto& name : predictor.feature_names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");

  // 3. Predict from a live context window (here: replayed samples).
  const auto runs = ds.runs();
  std::vector<data::SampleRecord> window;
  for (std::size_t i = 30; i < 35; ++i) window.push_back(ds[runs[0][i]]);

  const auto pred = predictor.predict(window);
  if (!pred) {
    std::printf("window too short for the configured features\n");
    return 1;
  }
  const char* level = pred->throughput_class == 0   ? "LOW (<300 Mbps)"
                      : pred->throughput_class == 1 ? "MEDIUM (300-700)"
                                                    : "HIGH (>700 Mbps)";
  std::printf("\npredicted next-second throughput: %.0f Mbps  [%s]\n",
              pred->throughput_mbps, level);
  std::printf("actual next-second throughput:    %.0f Mbps\n",
              ds[runs[0][35]].throughput_mbps);
  return 0;
}
